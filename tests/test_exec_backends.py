"""Unit tests of the execution-backend machinery (repro.exec)."""

import networkx as nx
import pytest

from repro import registry
from repro.congest.errors import (
    BandwidthExceededError,
    ProtocolViolationError,
)
from repro.congest.message import Broadcast
from repro.congest.network import Network, run_protocol
from repro.congest.node import FunctionProgram
from repro.congest.policy import BandwidthPolicy
from repro.exec import (
    FASTPATH,
    REFERENCE,
    SweepBackend,
    SweepCell,
    available_backends,
    current_backend,
    get_backend,
    grid_cells,
    run_cell,
    use_backend,
)

ROUND_BACKENDS = ["reference", "fastpath", "vectorized"]


def proto_factory(fn):
    return FunctionProgram.factory(fn)


def _metrics_tuple(metrics):
    return (
        metrics.rounds,
        metrics.total_messages,
        metrics.total_bits,
        metrics.max_message_bits,
        metrics.budget_bits,
        metrics.violations,
        metrics.worst_violation_bits,
    )


class TestSelection:
    def test_default_backends_registered(self):
        assert set(available_backends()) >= {
            "reference",
            "fastpath",
            "vectorized",
            "sweep",
        }

    def test_get_backend_by_name_and_instance(self):
        assert get_backend("reference") is REFERENCE
        assert get_backend(FASTPATH) is FASTPATH

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(KeyError, match="reference"):
            get_backend("warp-drive")

    def test_default_is_reference(self):
        assert current_backend() is REFERENCE

    def test_use_backend_nests_and_restores(self):
        assert current_backend() is REFERENCE
        with use_backend("fastpath"):
            assert current_backend() is FASTPATH
            with use_backend("reference"):
                assert current_backend() is REFERENCE
            assert current_backend() is FASTPATH
        assert current_backend() is REFERENCE

    def test_ambient_backend_drives_network_run(self):
        def proto(ctx):
            yield Broadcast(("m", ctx.node))
            return ctx.node

        graph = nx.cycle_graph(5)
        with use_backend("fastpath"):
            ambient = run_protocol(
                graph, proto_factory(proto), policy=BandwidthPolicy.unbounded()
            )
        # The fastpath signature: unbounded runs skip bit sizing.
        assert ambient.metrics.total_bits == 0
        assert ambient.metrics.total_messages == 5

    def test_spec_run_backend_param(self):
        spec = registry.get_algorithm("trial")
        graph = nx.cycle_graph(6)
        ref = spec.run(graph, seed=2, backend="reference")
        fast = spec.run(graph, seed=2, backend=FASTPATH)
        assert ref.coloring == fast.coloring


class TestFastpathParity:
    """Behavioural parity on hand-written protocols (edge cases the
    registry algorithms do not exercise directly)."""

    @pytest.mark.parametrize("backend", ROUND_BACKENDS)
    def test_broadcast_counts_once(self, backend):
        def proto(ctx):
            yield Broadcast(("b", ctx.node))
            return None

        result = run_protocol(
            nx.star_graph(4), proto_factory(proto), backend=backend
        )
        # A broadcast is one metered message, fanned out to all.
        assert result.metrics.total_messages == 5

    @pytest.mark.parametrize("backend", ROUND_BACKENDS)
    def test_strict_policy_raises(self, backend):
        def proto(ctx):
            yield {v: tuple(range(500)) for v in ctx.neighbors}
            return None

        with pytest.raises(BandwidthExceededError):
            run_protocol(
                nx.path_graph(2),
                proto_factory(proto),
                policy=BandwidthPolicy.strict(),
                backend=backend,
            )

    @pytest.mark.parametrize("backend", ROUND_BACKENDS)
    def test_non_neighbor_send_rejected(self, backend):
        def proto(ctx):
            yield {ctx.node + 2: ("bad",)} if ctx.node == 0 else {}
            return None

        with pytest.raises(ProtocolViolationError):
            run_protocol(
                nx.path_graph(4), proto_factory(proto), backend=backend
            )

    @pytest.mark.parametrize("backend", ROUND_BACKENDS)
    def test_non_dict_outbox_rejected(self, backend):
        def proto(ctx):
            yield ["not", "a", "dict"]

        with pytest.raises(ProtocolViolationError):
            run_protocol(
                nx.path_graph(2), proto_factory(proto), backend=backend
            )

    def test_track_metrics_identical(self):
        def proto(ctx):
            yield {v: tuple(range(300)) for v in ctx.neighbors}
            yield Broadcast(("tiny", ctx.node))
            return ctx.node

        graph = nx.cycle_graph(6)
        ref = run_protocol(
            graph, proto_factory(proto), backend="reference"
        )
        fast = run_protocol(
            graph, proto_factory(proto), backend="fastpath"
        )
        assert ref.outputs == fast.outputs
        assert _metrics_tuple(ref.metrics) == _metrics_tuple(
            fast.metrics
        )
        assert ref.metrics.violations > 0  # oversize tracked on both

    def test_record_rounds_delegates_to_reference(self):
        def proto(ctx):
            yield {v: ("a",) for v in ctx.neighbors}
            yield {}
            return None

        net = Network(nx.path_graph(2), proto_factory(proto))
        result = net.run(record_rounds=True, backend="fastpath")
        assert len(result.metrics.per_round) == result.metrics.rounds
        assert result.metrics.per_round[0].messages == 2

    @pytest.mark.parametrize("backend", ROUND_BACKENDS)
    def test_rounds_accounting_parity(self, backend):
        # Zero-round and trailing-local-computation accounting.
        def zero(ctx):
            return ctx.node
            yield  # pragma: no cover

        assert (
            run_protocol(
                nx.path_graph(3), proto_factory(zero), backend=backend
            ).metrics.rounds
            == 0
        )

        def trailing(ctx):
            yield {v: ("m",) for v in ctx.neighbors}
            return "out"

        assert (
            run_protocol(
                nx.path_graph(3),
                proto_factory(trailing),
                backend=backend,
            ).metrics.rounds
            == 1
        )


class TestSweepBackend:
    def _cells(self, seeds=(0,)):
        specs = [
            registry.get_algorithm(name)
            for name in ("trial", "greedy-oracle")
        ]
        return grid_cells(specs=specs, seeds=seeds)

    def test_cells_filter_unsupported(self):
        cells = self._cells()
        assert cells, "grid should not be empty"
        assert all(isinstance(c, SweepCell) for c in cells)

    def test_cell_roundtrip_and_delta(self):
        graph = nx.petersen_graph()
        cell = SweepCell.from_graph("trial", "petersen", 3, graph)
        rebuilt = cell.graph()
        assert sorted(rebuilt.nodes) == sorted(graph.nodes)
        assert {tuple(sorted(e)) for e in rebuilt.edges} == {
            tuple(sorted(e)) for e in graph.edges
        }
        assert cell.delta() == 3

    def test_run_cell_error_capture(self):
        cell = SweepCell(
            algorithm="no-such-algorithm",
            scenario="x",
            seed=0,
            nodes=(0, 1),
            edges=((0, 1),),
        )
        result = run_cell(cell)
        assert not result.ok
        assert "KeyError" in result.error

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_grid_deterministic_across_executors(self, executor):
        cells = self._cells(seeds=(0, 1))
        baseline = SweepBackend(executor="serial").run_grid(cells)
        swept = SweepBackend(
            executor=executor, max_workers=4
        ).run_grid(cells)
        assert swept.fingerprint() == baseline.fingerprint()
        assert swept.ok, [c.error for c in swept.failures]

    def test_aggregate_metrics_merges_rounds(self):
        swept = SweepBackend(executor="serial").run_grid(self._cells())
        agg = swept.aggregate_metrics()
        assert agg.rounds == sum(c.rounds for c in swept.cells)
        assert agg.total_messages == sum(
            c.metrics.total_messages for c in swept.cells
        )

    def test_single_network_execute_delegates_to_inner(self):
        def proto(ctx):
            yield Broadcast(("m", ctx.node))
            return None

        result = run_protocol(
            nx.cycle_graph(4),
            proto_factory(proto),
            policy=BandwidthPolicy.unbounded(),
            backend="sweep",
        )
        # Inner engine is fastpath: unbounded runs skip bit sizing.
        assert result.metrics.total_bits == 0
        assert result.metrics.total_messages == 4

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepBackend(executor="rocket")
