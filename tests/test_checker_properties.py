"""Property tests cross-validating ``verify.checker`` against
``graphs.square``.

The checker deliberately recomputes distance-2 adjacency with its own
BFS instead of reusing :mod:`repro.graphs.square`; these tests pit the
two implementations against each other on random graphs and random
(partial, possibly invalid) colorings — they must agree on validity
and on the exact conflict sets.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_d2_coloring
from repro.graphs.square import d2_neighbors, square
from repro.verify.checker import check_d2_coloring


@st.composite
def random_graphs(draw, max_n: int = 10):
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    mask = draw(
        st.lists(
            st.booleans(), min_size=len(pairs), max_size=len(pairs)
        )
    )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(
        pair for pair, keep in zip(pairs, mask) if keep
    )
    return graph


@st.composite
def graph_with_coloring(draw, max_n: int = 10, palette: int = 5):
    graph = draw(random_graphs(max_n=max_n))
    coloring = {
        v: draw(
            st.one_of(
                st.none(), st.integers(min_value=0, max_value=palette)
            )
        )
        for v in graph.nodes
    }
    return graph, coloring, palette


def square_conflicts(graph, coloring):
    """Conflicting d2-pairs computed from G² (the rival oracle)."""
    sq = square(graph)
    return {
        (min(u, v), max(u, v))
        for u, v in sq.edges
        if coloring.get(u) is not None
        and coloring.get(u) == coloring.get(v)
    }


class TestCheckerAgreesWithSquare:
    @given(graph_with_coloring())
    @settings(max_examples=150)
    def test_conflict_sets_identical(self, case):
        graph, coloring, _palette = case
        report = check_d2_coloring(graph, coloring)
        via_checker = {
            (min(u, v), max(u, v)) for u, v in report.conflicts
        }
        assert via_checker == square_conflicts(graph, coloring)

    @given(graph_with_coloring())
    @settings(max_examples=150)
    def test_validity_identical(self, case):
        graph, coloring, palette = case
        report = check_d2_coloring(graph, coloring, palette)
        uncolored = {
            v for v in graph.nodes if coloring.get(v) is None
        }
        out_of_palette = {
            v
            for v in graph.nodes
            if coloring.get(v) is not None
            and not 0 <= coloring[v] < palette
        }
        expected_valid = (
            not uncolored
            and not out_of_palette
            and not square_conflicts(graph, coloring)
        )
        assert report.valid == expected_valid
        assert set(report.uncolored) == uncolored
        assert set(report.out_of_palette) == out_of_palette

    @given(random_graphs())
    @settings(max_examples=100)
    def test_checker_neighborhoods_match_square(self, graph):
        # With every node the same color, the conflict pairs through
        # v are exactly the d2-neighborhood of v: the checker's BFS
        # must recover d2_neighbors node for node.
        coloring = {u: 0 for u in graph.nodes}
        report = check_d2_coloring(graph, coloring)
        for v in graph.nodes:
            hit = {
                (set(pair) - {v}).pop()
                for pair in report.conflicts
                if v in pair
            }
            assert hit == d2_neighbors(graph, v)


class TestOracleAlwaysValidByBothJudges:
    @given(random_graphs())
    @settings(max_examples=100)
    def test_greedy_oracle_valid_per_square(self, graph):
        result = greedy_d2_coloring(graph)
        assert not square_conflicts(graph, result.coloring)
        assert check_d2_coloring(
            graph, result.coloring, result.palette_size
        ).valid
