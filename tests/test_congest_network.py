"""Tests of the synchronous executor: delivery, halting, metering."""

import networkx as nx
import pytest

from repro.congest.errors import (
    BandwidthExceededError,
    NonterminationError,
    ProtocolViolationError,
)
from repro.congest.network import Network, log2_ceil, run_protocol
from repro.congest.node import FunctionProgram, NodeProgram
from repro.congest.policy import BandwidthPolicy


def proto_factory(fn):
    return FunctionProgram.factory(fn)


class TestDelivery:
    def test_one_round_neighbor_exchange(self):
        def proto(ctx):
            inbox = yield {
                v: ("id", ctx.node) for v in ctx.neighbors
            }
            return sorted(payload[1] for payload in inbox.values())

        result = run_protocol(nx.path_graph(4), proto_factory(proto))
        assert result.outputs == {
            0: [1],
            1: [0, 2],
            2: [1, 3],
            3: [2],
        }

    def test_broadcast_reaches_all_neighbors(self):
        def proto(ctx):
            from repro.congest.message import Broadcast

            inbox = yield Broadcast(("hi", ctx.node))
            return len(inbox)

        result = run_protocol(
            nx.star_graph(5), proto_factory(proto)
        )
        assert result.outputs[0] == 5
        assert all(result.outputs[v] == 1 for v in range(1, 6))

    def test_messages_delivered_next_round_not_same(self):
        def proto(ctx):
            first = yield {v: ("a",) for v in ctx.neighbors}
            second = yield {}
            return (len(first), len(second))

        result = run_protocol(nx.path_graph(2), proto_factory(proto))
        # round-1 traffic arrives with the first resume; nothing later
        assert result.outputs[0] == (1, 0)

    def test_empty_outbox_allowed(self):
        def proto(ctx):
            yield {}
            return "done"

        result = run_protocol(nx.path_graph(3), proto_factory(proto))
        assert set(result.outputs.values()) == {"done"}

    def test_sending_to_non_neighbor_rejected(self):
        def proto(ctx):
            yield {ctx.node + 2: ("bad",)} if ctx.node == 0 else {}
            return None

        with pytest.raises(ProtocolViolationError):
            run_protocol(nx.path_graph(4), proto_factory(proto))

    def test_non_dict_outbox_rejected(self):
        def proto(ctx):
            yield ["not", "a", "dict"]

        with pytest.raises(ProtocolViolationError):
            run_protocol(nx.path_graph(2), proto_factory(proto))


class TestRoundsAccounting:
    def test_zero_round_protocol(self):
        def proto(ctx):
            return ctx.node
            yield  # pragma: no cover

        result = run_protocol(nx.path_graph(3), proto_factory(proto))
        assert result.metrics.rounds == 0

    def test_trailing_local_computation_not_charged(self):
        def proto(ctx):
            yield {v: ("m",) for v in ctx.neighbors}
            return "out"

        result = run_protocol(nx.path_graph(3), proto_factory(proto))
        assert result.metrics.rounds == 1

    def test_silent_round_with_running_nodes_counts(self):
        def proto(ctx):
            yield {}
            yield {}
            return None

        result = run_protocol(nx.path_graph(2), proto_factory(proto))
        assert result.metrics.rounds == 2

    def test_staggered_halting(self):
        def proto(ctx):
            rounds = ctx.node + 1
            for _ in range(rounds):
                yield {v: ("x",) for v in ctx.neighbors}
            return rounds

        result = run_protocol(nx.path_graph(3), proto_factory(proto))
        assert result.outputs == {0: 1, 1: 2, 2: 3}
        assert result.metrics.rounds == 3


class TestTermination:
    def test_max_rounds_raises_by_default(self):
        def proto(ctx):
            while True:
                yield {}

        with pytest.raises(NonterminationError):
            run_protocol(
                nx.path_graph(2),
                proto_factory(proto),
                max_rounds=5,
            )

    def test_max_rounds_soft_stop(self):
        def proto(ctx):
            while True:
                yield {}

        net = Network(nx.path_graph(2), proto_factory(proto))
        result = net.run(max_rounds=5, raise_on_timeout=False)
        assert not result.halted
        assert result.metrics.rounds == 5

    def test_stop_when_monitor(self):
        def proto(ctx):
            count = 0
            while True:
                yield {}
                count += 1
                ctx.data["count"] = count

        def monitor(network, round_index):
            return round_index >= 3

        net = Network(nx.path_graph(2), proto_factory(proto))
        result = net.run(stop_when=monitor, raise_on_timeout=False)
        assert result.stopped_early


class TestStopWhenFinalRound:
    """Regression: a monitor firing on the exact final admissible
    round is a successful early stop, not non-termination.

    The monitor is consulted *before* the ``max_rounds`` guard.  A
    protocol whose stop condition is reached after precisely
    ``max_rounds`` communication rounds used to be reported as timed
    out (``NonterminationError`` / ``halted=False, stopped_early=
    False``) even though the monitor would have confirmed success.
    """

    ROUNDS = 3

    @staticmethod
    def _proto(ctx):
        # Exchange for exactly ROUNDS rounds — marking completion as
        # the last message goes out, exactly like an all-colored
        # monitor observes — then idle forever: only the monitor can
        # end the run.
        for i in range(TestStopWhenFinalRound.ROUNDS):
            if i == TestStopWhenFinalRound.ROUNDS - 1:
                ctx.data["done"] = True
            yield {v: ("m", i) for v in ctx.neighbors}
        while True:
            yield {}

    @staticmethod
    def _monitor(network, round_index):
        return all(
            ctx.data.get("done") for ctx in network.contexts.values()
        )

    @pytest.mark.parametrize("backend", ["reference", "fastpath"])
    def test_monitor_on_final_round_is_stopped_early(self, backend):
        net = Network(nx.path_graph(3), proto_factory(self._proto))
        result = net.run(
            max_rounds=self.ROUNDS,
            stop_when=self._monitor,
            backend=backend,
        )
        assert result.stopped_early
        assert not result.halted
        assert result.metrics.rounds == self.ROUNDS

    @pytest.mark.parametrize("backend", ["reference", "fastpath"])
    def test_monitor_on_final_round_does_not_raise(self, backend):
        # Even with raise_on_timeout (the default), reaching the stop
        # condition on the final round must not raise.
        net = Network(nx.path_graph(3), proto_factory(self._proto))
        result = net.run(
            max_rounds=self.ROUNDS,
            stop_when=self._monitor,
            raise_on_timeout=True,
            backend=backend,
        )
        assert result.stopped_early

    @pytest.mark.parametrize("backend", ["reference", "fastpath"])
    def test_true_timeout_still_raises(self, backend):
        # One round short: the monitor never fires, so the timeout
        # must still be a timeout.
        net = Network(nx.path_graph(3), proto_factory(self._proto))
        with pytest.raises(NonterminationError):
            net.run(
                max_rounds=self.ROUNDS - 1,
                stop_when=self._monitor,
                backend=backend,
            )

    @pytest.mark.parametrize("backend", ["reference", "fastpath"])
    def test_true_timeout_soft_stop_not_stopped_early(self, backend):
        net = Network(nx.path_graph(3), proto_factory(self._proto))
        result = net.run(
            max_rounds=self.ROUNDS - 1,
            stop_when=self._monitor,
            raise_on_timeout=False,
            backend=backend,
        )
        assert not result.stopped_early
        assert not result.halted


class TestMetering:
    def test_message_and_bit_totals(self):
        def proto(ctx):
            yield {v: ("m", 3) for v in ctx.neighbors}
            return None

        result = run_protocol(nx.path_graph(3), proto_factory(proto))
        assert result.metrics.total_messages == 4  # 2 edges, 2 dirs
        assert result.metrics.total_bits > 0
        assert result.metrics.max_message_bits > 0

    def test_strict_policy_raises_on_oversize(self):
        def proto(ctx):
            big = tuple(range(1000))
            yield {v: big for v in ctx.neighbors}
            return None

        with pytest.raises(BandwidthExceededError):
            run_protocol(
                nx.path_graph(2),
                proto_factory(proto),
                policy=BandwidthPolicy.strict(),
            )

    def test_track_policy_counts_violations(self):
        def proto(ctx):
            big = tuple(range(1000))
            yield {v: big for v in ctx.neighbors}
            return None

        result = run_protocol(
            nx.path_graph(2),
            proto_factory(proto),
            policy=BandwidthPolicy.track(),
        )
        assert result.metrics.violations == 2
        assert not result.metrics.compliant

    def test_unbounded_policy_never_flags(self):
        def proto(ctx):
            big = tuple(range(1000))
            yield {v: big for v in ctx.neighbors}
            return None

        result = run_protocol(
            nx.path_graph(2),
            proto_factory(proto),
            policy=BandwidthPolicy.unbounded(),
        )
        assert result.metrics.violations == 0

    def test_per_round_recording(self):
        def proto(ctx):
            yield {v: ("a",) for v in ctx.neighbors}
            yield {}
            return None

        net = Network(nx.path_graph(2), proto_factory(proto))
        result = net.run(record_rounds=True)
        assert len(result.metrics.per_round) == result.metrics.rounds
        assert result.metrics.per_round[0].messages == 2


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.Graph(), proto_factory(lambda ctx: iter(())))

    def test_non_int_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(TypeError):
            Network(graph, proto_factory(lambda ctx: iter(())))

    def test_inputs_reach_nodes(self):
        def proto(ctx):
            return ctx.data["x"]
            yield  # pragma: no cover

        result = run_protocol(
            nx.path_graph(2),
            proto_factory(proto),
            inputs={0: {"x": 10}, 1: {"x": 20}},
        )
        assert result.outputs == {0: 10, 1: 20}

    def test_delta_defaults_to_max_degree(self):
        def proto(ctx):
            return ctx.delta
            yield  # pragma: no cover

        result = run_protocol(
            nx.star_graph(4), proto_factory(proto)
        )
        assert set(result.outputs.values()) == {4}

    def test_neighbors_sorted(self):
        def proto(ctx):
            return ctx.neighbors
            yield  # pragma: no cover

        result = run_protocol(nx.cycle_graph(4), proto_factory(proto))
        for neighbors in result.outputs.values():
            assert list(neighbors) == sorted(neighbors)


class TestDeterminism:
    def test_same_seed_same_transcript(self):
        def proto(ctx):
            values = []
            for _ in range(3):
                inbox = yield {
                    v: ("r", ctx.rng.randrange(1000))
                    for v in ctx.neighbors
                }
                values.append(
                    sorted(p[1] for p in inbox.values())
                )
            return values

        first = run_protocol(
            nx.cycle_graph(5), proto_factory(proto), seed=42
        )
        second = run_protocol(
            nx.cycle_graph(5), proto_factory(proto), seed=42
        )
        assert first.outputs == second.outputs

    def test_different_seeds_differ(self):
        def proto(ctx):
            return ctx.rng.randrange(10**9)
            yield  # pragma: no cover

        a = run_protocol(
            nx.path_graph(4), proto_factory(proto), seed=1
        )
        b = run_protocol(
            nx.path_graph(4), proto_factory(proto), seed=2
        )
        assert a.outputs != b.outputs


class TestHelpers:
    def test_log2_ceil(self):
        assert log2_ceil(1) == 1
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10
        assert log2_ceil(1025) == 11

    def test_idle_helper(self):
        class Prog(NodeProgram):
            def run(self):
                yield from self.idle(3)
                return "ok"

        result = run_protocol(nx.path_graph(2), Prog)
        assert set(result.outputs.values()) == {"ok"}
        assert result.metrics.rounds == 3
