"""Tests for the experiment harness and the protocol probes."""

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    e09_slack,
    e12_blocked_phases,
    e16_trial_eps,
)
from repro.harness.report import ExperimentTable
from repro.graphs.generators import random_regular
from repro.graphs.instances import petersen
from repro.tests_support import (
    build_similarity_states,
    partial_greedy_coloring,
    run_finish_only,
    run_learn_palette_only,
    run_lottery_draws,
    true_free_sets,
)
from repro.util.fitting import fit_linear


class TestExperimentTable:
    def _table(self):
        table = ExperimentTable(
            "EX", "title", "claim", ["a", "b"]
        )
        table.add_row(1, 2)
        table.add_check("ok", True)
        table.add_note("a note")
        return table

    def test_render_contains_sections(self):
        text = self._table().render()
        assert "EX: title" in text
        assert "paper claim: claim" in text
        assert "check [PASS] ok" in text
        assert "note: a note" in text

    def test_failed_check_rendering(self):
        table = self._table()
        table.add_check("bad", False)
        assert "check [FAIL] bad" in table.render()
        assert not table.all_checks_pass

    def test_best_fit(self):
        table = self._table()
        assert table.best_fit() is None
        table.fits = [fit_linear([0, 1], [0, 1], "f")]
        assert table.best_fit().name == "f"


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {f"E{i}" for i in range(1, 23)}
        assert set(ALL_EXPERIMENTS) == expected

    def test_experiments_return_tables(self):
        table = e16_trial_eps(eps_values=(0.0, 1.0), n=24)
        assert isinstance(table, ExperimentTable)
        assert table.rows

    def test_slack_experiment_checks(self):
        table = e09_slack(deltas=(6,), n=40)
        assert table.all_checks_pass

    def test_blocked_phases_experiment(self):
        table = e12_blocked_phases()
        assert table.all_checks_pass


class TestProbes:
    def test_partial_greedy_coloring_live_count(self):
        graph = random_regular(4, 20, seed=1)
        coloring = partial_greedy_coloring(graph, 5, seed=2)
        live = [v for v, c in coloring.items() if c is None]
        assert len(live) == 5

    def test_true_free_sets_are_free(self):
        graph = random_regular(4, 20, seed=1)
        coloring = partial_greedy_coloring(graph, 4, seed=3)
        free = true_free_sets(graph, coloring, 17)
        from repro.graphs.square import d2_neighbors

        for v, colors in free.items():
            used = {
                coloring[u]
                for u in d2_neighbors(graph, v)
                if coloring[u] is not None
            }
            assert not (colors & used)
            assert colors  # palette > d2-degree guarantees one

    def test_run_finish_only_valid(self):
        graph = random_regular(6, 40, seed=4)
        rounds, valid = run_finish_only(graph, 5, seed=5)
        assert valid
        assert rounds >= 1

    def test_run_learn_palette_flooding_exact(self):
        graph = petersen()
        rounds, exact, superset = run_learn_palette_only(
            graph, 3, force_small=True, seed=6
        )
        assert exact
        assert superset
        assert rounds > 0

    def test_run_learn_palette_handlers_superset(self):
        graph = petersen()
        _rounds, _exact, superset = run_learn_palette_only(
            graph, 3, force_small=False, seed=7
        )
        assert superset

    def test_similarity_probe_shapes(self):
        graph = petersen()
        states, config = build_similarity_states(
            graph, force_exact=True
        )
        assert config.exact
        assert set(states) == set(graph.nodes)

    def test_lottery_probe_draw_count(self):
        graph = petersen()
        outputs = run_lottery_draws(graph, count=4, seed=8)
        assert all(
            len(out["draws"]) == 4 for out in outputs.values()
        )
