"""Lease-based fleet scheduling: claim, heartbeat, reclaim, survive.

The contract of :mod:`repro.exec.fleet`: any number of workers (any
process, any host sharing the checkpoint directory) race over one
shard manifest through atomic lease files; a worker dying mid-shard
— simulated abandonment or a real SIGKILL — has its lease reclaimed
by a survivor, and the final :func:`merge_shards` result stays
byte-identical to the unsharded sweep fingerprint.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import registry
from repro.exec import (
    LeaseLostError,
    LeaseStore,
    ReclaimPolicy,
    ShardManifest,
    SweepBackend,
    compile_manifest,
    fleet_status,
    grid_cells,
    merge_shards,
    run_fleet,
    run_fleet_worker,
    run_shard,
)
from repro.exec.fleet import main as fleet_main
from repro.workloads import get_workload

SEED = 31

#: Snappy loop for tests: stale after 100ms, poll every 20ms.
FAST = ReclaimPolicy(
    stale_after=0.1,
    poll_interval=0.02,
    max_poll_interval=0.1,
)

#: Generous wall-clock bound so a scheduling bug fails the test
#: instead of hanging the suite.
DEADLINE = 60.0


def small_grid():
    specs = [
        registry.get_algorithm(name)
        for name in ("trial", "greedy-oracle")
    ]
    corpus = [
        get_workload(name)
        for name in ("cycle5", "gnp24", "powerlaw24")
    ]
    return grid_cells(
        specs=specs, scenarios=corpus, seeds=(SEED, SEED + 1)
    )


@pytest.fixture(scope="module")
def unsharded():
    return SweepBackend(executor="serial").run_grid(small_grid())


@pytest.fixture()
def saved_manifest(tmp_path):
    manifest = compile_manifest(small_grid(), 2)
    manifest.save(str(tmp_path))
    return manifest


class TestLeaseStore:
    def _stores(self, tmp_path, *names, policy=FAST):
        return [
            LeaseStore(str(tmp_path), "digest", worker_id=name,
                       policy=policy)
            for name in names
        ]

    def test_claim_is_exclusive(self, tmp_path):
        a, b = self._stores(tmp_path, "a", "b")
        lease = a.try_claim(0)
        assert lease is not None
        assert b.try_claim(0) is None
        assert b.try_claim(1) is not None  # other shards unaffected

    def test_heartbeat_bumps_the_monotonic_counter(self, tmp_path):
        (a,) = self._stores(tmp_path, "a")
        lease = a.try_claim(0)
        for expected in (1, 2, 3):
            lease.heartbeat()
            assert a.read(0)["counter"] == expected

    def test_release_frees_the_shard(self, tmp_path):
        a, b = self._stores(tmp_path, "a", "b")
        a.try_claim(0).release()
        assert a.read(0) is None
        assert b.try_claim(0) is not None

    def test_fresh_lease_is_not_reclaimable(self, tmp_path):
        a, b = self._stores(
            tmp_path, "a", "b",
            policy=ReclaimPolicy(stale_after=60.0),
        )
        a.try_claim(0)
        assert b.try_reclaim(0) is None  # first sighting starts clock
        assert b.try_reclaim(0) is None  # still inside stale_after

    def test_stale_lease_is_reclaimed_and_owner_loses(self, tmp_path):
        a, b = self._stores(tmp_path, "a", "b")
        dead = a.try_claim(0)
        assert b.try_reclaim(0) is None  # observation starts
        time.sleep(FAST.stale_after * 1.5)
        taken = b.try_reclaim(0)
        assert taken is not None
        assert taken.takeovers == 1
        assert b.read(0)["owner"] == "b"
        with pytest.raises(LeaseLostError):
            dead.heartbeat()

    def test_heartbeats_keep_a_lease_live(self, tmp_path):
        a, b = self._stores(tmp_path, "a", "b")
        lease = a.try_claim(0)
        assert b.try_reclaim(0) is None
        time.sleep(FAST.stale_after * 0.7)
        lease.heartbeat()  # counter changed: b's clock restarts
        time.sleep(FAST.stale_after * 0.7)
        assert b.try_reclaim(0) is None

    def test_corrupt_lease_goes_stale_like_a_dead_one(self, tmp_path):
        a, b = self._stores(tmp_path, "a", "b")
        with open(a.lease_path(0), "w", encoding="utf-8") as handle:
            handle.write('{"own')  # claimer died mid-create
        assert b.read(0) == {"corrupt": True}
        assert b.try_reclaim(0) is None
        time.sleep(FAST.stale_after * 1.5)
        assert b.try_reclaim(0) is not None

    def test_takeover_budget_bounds_reclaims(self, tmp_path):
        policy = ReclaimPolicy(stale_after=0.05, max_takeovers=2)
        a, b = self._stores(tmp_path, "a", "b", policy=policy)
        lease = a.try_claim(0, takeovers=policy.max_takeovers)
        assert b.try_reclaim(0) is None
        time.sleep(policy.stale_after * 2)
        assert b.try_reclaim(0) is None  # budget spent: stuck
        assert lease.takeovers == policy.max_takeovers


class TestFleetWorkers:
    def test_single_worker_drains_the_manifest(
        self, tmp_path, saved_manifest, unsharded
    ):
        report = run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            policy=FAST,
            deadline=DEADLINE,
        )
        assert sorted(report.claimed) == [0, 1]
        assert sorted(report.completed) == [0, 1]
        assert not report.lost and not report.reclaimed
        merged = merge_shards(saved_manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_workers_racing_hold_disjoint_shards(
        self, tmp_path, unsharded
    ):
        import concurrent.futures

        manifest = compile_manifest(small_grid(), 4)
        manifest.save(str(tmp_path))
        # Roomy stale_after: nothing in this test should ever be
        # reclaimed, even on a loaded CI box.
        race = ReclaimPolicy(
            stale_after=5.0, poll_interval=0.02, max_poll_interval=0.1
        )
        with concurrent.futures.ThreadPoolExecutor(3) as pool:
            reports = [
                future.result()
                for future in [
                    pool.submit(
                        run_fleet_worker,
                        manifest,
                        str(tmp_path),
                        worker_id=f"w{k}",
                        policy=race,
                        deadline=DEADLINE,
                    )
                    for k in range(3)
                ]
            ]
        held = [s for r in reports for s in r.claimed + r.reclaimed]
        assert sorted(held) == [0, 1, 2, 3]  # each shard exactly once
        merged = merge_shards(manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()

    def test_dead_workers_shard_is_reclaimed_and_finished(
        self, tmp_path, saved_manifest, unsharded
    ):
        # Worker "casualty" claims shard 0, checkpoints two cells,
        # then dies without releasing (no further heartbeats).
        casualty = LeaseStore(
            str(tmp_path),
            saved_manifest.grid_digest,
            worker_id="casualty",
            policy=FAST,
        )
        abandoned = casualty.try_claim(0)
        assert abandoned is not None
        run_shard(saved_manifest, 0, str(tmp_path), max_cells=2)

        survivor = run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            worker_id="survivor",
            policy=FAST,
            deadline=DEADLINE,
        )
        assert survivor.reclaimed == [0]
        assert survivor.resumed == 2  # the casualty's cells survive
        merged = merge_shards(saved_manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()
        with pytest.raises(LeaseLostError):
            abandoned.heartbeat()

    def test_worker_respects_max_shards(
        self, tmp_path, saved_manifest
    ):
        report = run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            policy=FAST,
            max_shards=1,
            deadline=DEADLINE,
        )
        assert len(report.claimed) == 1
        statuses = fleet_status(saved_manifest, str(tmp_path))
        assert [s.state for s in statuses].count("complete") == 1

    def test_no_wait_worker_returns_while_peer_holds_work(
        self, tmp_path, saved_manifest
    ):
        peer = LeaseStore(
            str(tmp_path),
            saved_manifest.grid_digest,
            worker_id="peer",
            policy=FAST,
        )
        held = peer.try_claim(0)
        report = run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            policy=FAST,
            wait_for_completion=False,
            deadline=DEADLINE,
        )
        assert report.claimed == [1]  # did its share, didn't linger
        held.release()

    def test_fleet_status_reports_leases_and_progress(
        self, tmp_path, saved_manifest
    ):
        peer = LeaseStore(
            str(tmp_path),
            saved_manifest.grid_digest,
            worker_id="peer",
            policy=FAST,
        )
        peer.try_claim(0)
        rows = fleet_status(saved_manifest, str(tmp_path))
        assert rows[0].state == "leased"
        assert rows[0].owner == "peer"
        assert rows[1].state == "pending"


class TestRunFleet:
    @pytest.mark.parametrize("num_workers", [1, 2])
    def test_merge_is_byte_identical(
        self, tmp_path, unsharded, num_workers
    ):
        merged = run_fleet(
            small_grid(),
            3,
            str(tmp_path),
            num_workers=num_workers,
            policy=FAST,
            deadline=DEADLINE,
        )
        assert merged.fingerprint() == unsharded.fingerprint()
        assert repr(merged.aggregate_metrics()) == repr(
            unsharded.aggregate_metrics()
        )


class TestSigkilledWorker:
    def test_sigkilled_cli_worker_is_survived(
        self, tmp_path, saved_manifest, unsharded
    ):
        """The acceptance scenario: a real fleet worker process is
        SIGKILLed mid-shard; a survivor reclaims whatever it held and
        the merge is byte-identical to the unsharded fingerprint —
        whatever instant the kill landed (before the claim, mid-cell,
        or mid-checkpoint-write)."""
        repo_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(repo_root, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        victim = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.exec.fleet",
                "work",
                str(tmp_path),
                "--worker-id",
                "victim",
                "--throttle",
                "0.15",
                "--stale-after",
                "0.3",
                "--poll-interval",
                "0.02",
            ],
            cwd=repo_root,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Let it get properly mid-shard: wait for a lease plus at
            # least one checkpointed cell (bounded wait).
            lease_dir = os.path.join(str(tmp_path), "leases")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                leases = (
                    os.listdir(lease_dir)
                    if os.path.isdir(lease_dir)
                    else []
                )
                checkpoints = [
                    f
                    for f in os.listdir(str(tmp_path))
                    if f.endswith(".jsonl")
                    and os.path.getsize(
                        os.path.join(str(tmp_path), f)
                    )
                    > 0
                ]
                if leases and checkpoints:
                    break
                time.sleep(0.02)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup
                victim.kill()
                victim.wait(timeout=30)

        survivor = run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            worker_id="survivor",
            policy=ReclaimPolicy(
                stale_after=0.3,
                poll_interval=0.02,
                max_poll_interval=0.1,
            ),
            deadline=DEADLINE,
        )
        # The victim died holding a lease, so the survivor reclaimed
        # (it can also have claimed shards the victim never reached).
        assert survivor.reclaimed or survivor.claimed
        merged = merge_shards(saved_manifest, str(tmp_path))
        assert merged.fingerprint() == unsharded.fingerprint()


class TestFleetCLI:
    def test_status_and_merge_commands(
        self, tmp_path, saved_manifest, unsharded, capsys
    ):
        assert (
            fleet_main(["status", str(tmp_path)]) == 3
        )  # incomplete
        run_fleet_worker(
            saved_manifest,
            str(tmp_path),
            policy=FAST,
            deadline=DEADLINE,
        )
        assert fleet_main(["status", str(tmp_path)]) == 0
        assert fleet_main(["merge", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        import hashlib

        expected = hashlib.sha256(
            unsharded.fingerprint()
        ).hexdigest()
        assert expected in out

    def test_work_command_drains_and_reports(
        self, tmp_path, saved_manifest, capsys
    ):
        code = fleet_main(
            [
                "work",
                str(tmp_path),
                "--worker-id",
                "cli-worker",
                "--stale-after",
                "0.2",
                "--poll-interval",
                "0.02",
                "--deadline",
                str(DEADLINE),
            ]
        )
        assert code == 0
        assert "cli-worker" in capsys.readouterr().out
        assert all(
            s.state == "complete"
            for s in fleet_status(saved_manifest, str(tmp_path))
        )


def test_lease_files_do_not_disturb_merge_or_status(
    tmp_path, saved_manifest, unsharded
):
    """The leases/ subdirectory lives inside the checkpoint dir; the
    manifest/checkpoint machinery must ignore it entirely."""
    run_fleet_worker(
        saved_manifest, str(tmp_path), policy=FAST, deadline=DEADLINE
    )
    reloaded = ShardManifest.load(str(tmp_path))
    assert reloaded == saved_manifest
    merged = merge_shards(reloaded, str(tmp_path))
    assert merged.fingerprint() == unsharded.fingerprint()
    with open(
        os.path.join(str(tmp_path), "manifest.json"),
        "r",
        encoding="utf-8",
    ) as handle:
        json.load(handle)  # still plain valid JSON


class TestFleetCLIStructuredOutput:
    """``--json`` emits machine-readable records (exit codes and the
    human rendering are unchanged); ``--trace-dir`` writes a valid
    ``repro.obs`` trace of the worker's lease activity."""

    def _work(self, tmp_path, *extra):
        return fleet_main(
            [
                "work",
                str(tmp_path),
                "--worker-id",
                "cli-worker",
                "--stale-after",
                "0.2",
                "--poll-interval",
                "0.02",
                "--deadline",
                str(DEADLINE),
                *extra,
            ]
        )

    def test_work_json_record(
        self, tmp_path, saved_manifest, capsys
    ):
        assert self._work(tmp_path, "--json") == 0
        record = json.loads(
            capsys.readouterr().out.strip().splitlines()[-1]
        )
        assert record["event"] == "worker_done"
        assert record["worker_id"] == "cli-worker"
        assert sorted(record["completed"]) == list(
            range(saved_manifest.num_shards)
        )
        assert record["executed"] > 0

    def test_status_and_merge_json_records(
        self, tmp_path, saved_manifest, unsharded, capsys
    ):
        assert fleet_main(["status", str(tmp_path), "--json"]) == 3
        record = json.loads(capsys.readouterr().out)
        assert record["event"] == "fleet_status"
        assert not record["complete"]
        assert len(record["shards"]) == saved_manifest.num_shards

        self._work(tmp_path)
        capsys.readouterr()
        assert fleet_main(["status", str(tmp_path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["complete"]
        assert all(
            s["state"] == "complete" for s in record["shards"]
        )

        assert fleet_main(["merge", str(tmp_path), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        import hashlib

        assert record["event"] == "merge_done"
        assert record["fingerprint_sha256"] == hashlib.sha256(
            unsharded.fingerprint()
        ).hexdigest()
        aggregate = unsharded.aggregate_metrics()
        assert record["aggregate"]["rounds"] == aggregate.rounds
        assert (
            record["aggregate"]["total_bits"] == aggregate.total_bits
        )
        assert record["cache"] is not None
        assert record["cache"]["hits"] >= 0

    def test_trace_dir_writes_a_valid_trace(
        self, tmp_path, saved_manifest, capsys
    ):
        from repro.obs import read_trace, validate_trace

        trace_dir = os.path.join(str(tmp_path), "trace")
        assert self._work(tmp_path, "--trace-dir", trace_dir) == 0
        records = read_trace(trace_dir)
        assert validate_trace(records) == []
        events = {
            r["name"] for r in records if r["kind"] == "event"
        }
        assert "fleet.claim" in events
        assert "fleet.release" in events
        spans = {
            r.get("name")
            for r in records
            if r.get("kind") == "span"
        }
        assert "shard.run" in spans
        # The worker embedded its final metrics snapshot.
        (metrics,) = [
            r for r in records if r["kind"] == "metrics"
        ]
        counters = metrics["data"]["counters"]
        assert counters["fleet.claims"] >= 1
        assert metrics["data"]["gauges"]["process.peak_rss_mb"] > 0
