"""Unit tests for message payload sizing and multiplexing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.message import (
    Broadcast,
    bit_size,
    int_bits,
    merged,
    total_bits,
)


class TestIntBits:
    def test_zero_costs_one_bit(self):
        assert int_bits(0) == 1

    def test_one_costs_one_bit(self):
        assert int_bits(1) == 1

    def test_powers_of_two(self):
        assert int_bits(2) == 2
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_negative_adds_sign_bit(self):
        assert int_bits(-1) == int_bits(1) + 1

    @given(st.integers(min_value=0, max_value=2**64))
    def test_monotone_in_magnitude(self, value):
        assert int_bits(value + 1) >= int_bits(value)


class TestBitSize:
    def test_none_is_one_bit(self):
        assert bit_size(None) == 1

    def test_bool_is_one_bit(self):
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_matches_int_bits(self):
        assert bit_size(1000) == int_bits(1000)

    def test_string_charged_per_char(self):
        assert bit_size("ab") == 12

    def test_empty_string_nonzero(self):
        assert bit_size("") >= 1

    def test_tuple_sums_elements_plus_overhead(self):
        flat = bit_size((1, 2, 3))
        assert flat > bit_size(1) + bit_size(2) + bit_size(3)

    def test_nested_tuples(self):
        assert bit_size(((1, 2), 3)) > bit_size((1, 2))

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            bit_size(3.14)

    def test_rejects_dict_payload(self):
        with pytest.raises(TypeError):
            bit_size({"a": 1})

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32), max_size=20
        )
    )
    def test_longer_tuples_cost_more(self, values):
        shorter = bit_size(tuple(values))
        longer = bit_size(tuple(values) + (0,))
        assert longer > shorter

    def test_log_scale_for_ids(self):
        # An ID in [0, n) costs O(log n) bits: the CONGEST premise.
        assert bit_size(2**20 - 1) == 20


class TestBroadcastAndMerge:
    def test_broadcast_wraps_payload(self):
        b = Broadcast(("x", 1))
        assert b.payload == ("x", 1)

    def test_merged_packs_tuple(self):
        assert merged(("a", 1), ("b", 2)) == (("a", 1), ("b", 2))

    def test_total_bits_sums(self):
        payloads = [(1, 2), (3,)]
        assert total_bits(payloads) == sum(
            bit_size(p) for p in payloads
        )
