"""Unit tests for message payload sizing, multiplexing, bandwidth
policy edge cases, and Broadcast metering."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.errors import BandwidthExceededError
from repro.congest.message import (
    Broadcast,
    bit_size,
    int_bits,
    merged,
    total_bits,
)
from repro.congest.network import Network
from repro.congest.node import FunctionProgram
from repro.congest.policy import BandwidthMode, BandwidthPolicy


class TestIntBits:
    def test_zero_costs_one_bit(self):
        assert int_bits(0) == 1

    def test_one_costs_one_bit(self):
        assert int_bits(1) == 1

    def test_powers_of_two(self):
        assert int_bits(2) == 2
        assert int_bits(255) == 8
        assert int_bits(256) == 9

    def test_negative_adds_sign_bit(self):
        assert int_bits(-1) == int_bits(1) + 1

    @given(st.integers(min_value=0, max_value=2**64))
    def test_monotone_in_magnitude(self, value):
        assert int_bits(value + 1) >= int_bits(value)


class TestBitSize:
    def test_none_is_one_bit(self):
        assert bit_size(None) == 1

    def test_bool_is_one_bit(self):
        assert bit_size(True) == 1
        assert bit_size(False) == 1

    def test_int_matches_int_bits(self):
        assert bit_size(1000) == int_bits(1000)

    def test_string_charged_per_char(self):
        assert bit_size("ab") == 12

    def test_empty_string_nonzero(self):
        assert bit_size("") >= 1

    def test_tuple_sums_elements_plus_overhead(self):
        flat = bit_size((1, 2, 3))
        assert flat > bit_size(1) + bit_size(2) + bit_size(3)

    def test_nested_tuples(self):
        assert bit_size(((1, 2), 3)) > bit_size((1, 2))

    def test_rejects_unsupported_types(self):
        with pytest.raises(TypeError):
            bit_size(3.14)

    def test_rejects_dict_payload(self):
        with pytest.raises(TypeError):
            bit_size({"a": 1})

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**32), max_size=20
        )
    )
    def test_longer_tuples_cost_more(self, values):
        shorter = bit_size(tuple(values))
        longer = bit_size(tuple(values) + (0,))
        assert longer > shorter

    def test_log_scale_for_ids(self):
        # An ID in [0, n) costs O(log n) bits: the CONGEST premise.
        assert bit_size(2**20 - 1) == 20


def _run_star(fn, policy, n_leaves=3, record_rounds=False):
    """Run ``fn`` at every node of a star graph under ``policy``."""
    graph = nx.star_graph(n_leaves)
    network = Network(
        graph, FunctionProgram.factory(fn), policy=policy
    )
    return network.run(max_rounds=10, record_rounds=record_rounds)


def _hub_broadcasts_once(payload):
    """Protocol: the hub broadcasts ``payload`` once; leaves listen."""

    def fn(ctx):
        if ctx.node == 0:
            yield Broadcast(payload)
        else:
            yield {}

    return fn


class TestBandwidthPolicyEdgeCases:
    def test_zero_bandwidth_budget(self):
        policy = BandwidthPolicy(BandwidthMode.TRACK, beta=0, min_bits=0)
        assert policy.budget_bits(1) == 0
        assert policy.budget_bits(10**6) == 0

    def test_zero_bandwidth_tracks_every_message(self):
        policy = BandwidthPolicy(BandwidthMode.TRACK, beta=0, min_bits=0)
        run = _run_star(_hub_broadcasts_once((1, 2)), policy)
        assert run.metrics.violations == run.metrics.total_messages == 1
        assert not run.metrics.compliant
        assert run.metrics.worst_violation_bits == bit_size((1, 2))

    def test_zero_bandwidth_strict_raises(self):
        policy = BandwidthPolicy(BandwidthMode.STRICT, beta=0, min_bits=0)
        with pytest.raises(BandwidthExceededError):
            _run_star(_hub_broadcasts_once((1, 2)), policy)

    def test_unbounded_never_flags(self):
        policy = BandwidthPolicy.unbounded()
        huge = tuple(range(512))
        run = _run_star(_hub_broadcasts_once(huge), policy)
        assert run.metrics.compliant
        assert run.metrics.max_message_bits == bit_size(huge)

    def test_exact_limit_payload_is_compliant(self):
        # A payload of exactly budget bits must not count as a
        # violation; one bit more must.
        policy = BandwidthPolicy(BandwidthMode.TRACK, beta=1, min_bits=20)
        assert policy.budget_bits(4) == 20
        at_limit = 2**19  # bit_size == 20
        over = 2**20  # bit_size == 21
        assert bit_size(at_limit) == 20
        assert bit_size(over) == 21
        run = _run_star(_hub_broadcasts_once(at_limit), policy)
        assert run.metrics.compliant
        run = _run_star(_hub_broadcasts_once(over), policy)
        assert run.metrics.violations == 1
        assert run.metrics.worst_violation_bits == 21

    def test_budget_floor_on_tiny_networks(self):
        policy = BandwidthPolicy()
        # min_bits dominates until log2 n catches up.
        assert policy.budget_bits(1) == 96
        assert policy.budget_bits(2) == 96
        assert policy.budget_bits(2**10) == 32 * 10

    def test_budget_monotone_in_n(self):
        policy = BandwidthPolicy()
        budgets = [policy.budget_bits(n) for n in (1, 2, 16, 1024, 10**6)]
        assert budgets == sorted(budgets)


class TestBroadcastMetering:
    """A Broadcast is one transmission: metered once, delivered to all."""

    def test_broadcast_metered_once(self):
        payload = ("x", 7)
        run = _run_star(
            _hub_broadcasts_once(payload),
            BandwidthPolicy(),
            n_leaves=4,
        )
        # One metered message despite five deliveries...
        assert run.metrics.total_messages == 1
        assert run.metrics.total_bits == bit_size(payload)

    def test_broadcast_delivers_to_every_neighbor(self):
        payload = ("x", 7)
        run = _run_star(
            _hub_broadcasts_once(payload),
            BandwidthPolicy(),
            n_leaves=4,
            record_rounds=True,
        )
        # ...while the per-round delivery count sees all five edges.
        assert run.metrics.per_round[0].messages == 4

    def test_unicast_fanout_is_metered_per_edge(self):
        # The same traffic as a dict outbox pays once per edge: the
        # CONGEST distinction Broadcast metering must preserve.
        def fn(ctx):
            if ctx.node == 0:
                yield {v: ("x", 7) for v in ctx.neighbors}
            else:
                yield {}

        run = _run_star(fn, BandwidthPolicy(), n_leaves=4)
        assert run.metrics.total_messages == 4
        assert run.metrics.total_bits == 4 * bit_size(("x", 7))

    def test_broadcast_over_budget_counts_one_violation(self):
        policy = BandwidthPolicy(BandwidthMode.TRACK, beta=0, min_bits=4)
        run = _run_star(
            _hub_broadcasts_once((1, 2, 3)), policy, n_leaves=5
        )
        assert run.metrics.violations == 1


class TestBroadcastAndMerge:
    def test_broadcast_wraps_payload(self):
        b = Broadcast(("x", 1))
        assert b.payload == ("x", 1)

    def test_merged_packs_tuple(self):
        assert merged(("a", 1), ("b", 2)) == (("a", 1), ("b", 2))

    def test_total_bits_sums(self):
        payloads = [(1, 2), (3,)]
        assert total_bits(payloads) == sum(
            bit_size(p) for p in payloads
        )
