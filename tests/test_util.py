"""Tests for primes, F_q polynomials, GF(2^a), k-wise hashing,
fitting, tables."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fitting import (
    STANDARD_MODELS,
    compare_models,
    fit_linear,
    log_star,
)
from repro.util.fq import (
    Poly1,
    degree_le_polynomials,
    linial_set,
    poly_eval,
)
from repro.util.gf2 import GF2Field
from repro.util.kwise import KWiseCoins
from repro.util.primes import (
    bertrand_prime,
    is_prime,
    next_prime_at_least,
)
from repro.util.tables import ascii_table, format_cell


class TestPrimes:
    def test_small_primes(self):
        assert [p for p in range(2, 30) if is_prime(p)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 6601):
            assert not is_prime(carmichael)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)
        assert not is_prime(2**32 - 1)

    def test_next_prime_at_least(self):
        assert next_prime_at_least(14) == 17
        assert next_prime_at_least(17) == 17
        assert next_prime_at_least(-5) == 2

    @pytest.mark.parametrize("delta", [1, 2, 3, 5, 8, 16, 40])
    def test_bertrand_prime_in_range(self, delta):
        q = bertrand_prime(delta)
        assert is_prime(q)
        assert 4 * delta * delta < q < 8 * delta * delta

    def test_bertrand_rejects_zero(self):
        with pytest.raises(ValueError):
            bertrand_prime(0)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_is_prime_matches_trial_division(self, n):
        reference = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == reference


class TestPoly1:
    def test_color_to_poly_bijection(self):
        q = 5
        seen = set()
        for color in range(q * q):
            poly = Poly1.from_color(color, q)
            seen.add((poly.a, poly.b))
        assert len(seen) == q * q

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Poly1.from_color(25, 5)

    def test_evaluation(self):
        poly = Poly1(2, 3, 7)  # 2 + 3x mod 7
        assert [poly(x) for x in range(7)] == [
            2, 5, 1, 4, 0, 3, 6,
        ]

    def test_distinct_polys_agree_at_most_once(self):
        q = 11
        for c1 in range(0, q * q, 7):
            for c2 in range(0, q * q, 13):
                if c1 == c2:
                    continue
                p1 = Poly1.from_color(c1, q)
                p2 = Poly1.from_color(c2, q)
                agreements = sum(
                    p1(x) == p2(x) for x in range(q)
                )
                assert agreements <= 1
                assert agreements == p1.agreements(p2)

    def test_agreements_same_poly(self):
        p = Poly1.from_color(8, 5)
        assert p.agreements(p) == 5

    def test_agreements_rejects_mixed_fields(self):
        with pytest.raises(ValueError):
            Poly1(0, 1, 5).agreements(Poly1(0, 1, 7))


class TestLinialSets:
    def test_set_size_is_q(self):
        assert len(linial_set(3, 1, 7)) == 7

    def test_distinct_colors_intersect_at_most_d(self):
        d, q = 2, 11
        base = linial_set(5, d, q)
        for other in range(20, 60):
            if other == 5:
                continue
            overlap = base & linial_set(other, d, q)
            assert len(overlap) <= d

    def test_cover_free_property(self):
        # q > d*D ensures no set is covered by D others.
        d, q, cover_degree = 1, 11, 5
        target = linial_set(7, d, q)
        rng = random.Random(0)
        others = rng.sample(
            [c for c in range(q * q) if c != 7], cover_degree
        )
        union = set()
        for c in others:
            union |= linial_set(c, d, q)
        assert target - union

    def test_degree_le_polynomials_bounds(self):
        with pytest.raises(ValueError):
            degree_le_polynomials(1000, 1, 7)
        with pytest.raises(ValueError):
            degree_le_polynomials(1, 1, 8)  # q not prime

    def test_poly_eval_matches_horner(self):
        coeffs = (3, 0, 2)
        assert poly_eval(coeffs, 4, 7) == (3 + 2 * 16) % 7


class TestGF2:
    def test_add_is_xor(self):
        field = GF2Field(8)
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_known_aes_product(self):
        field = GF2Field(8)
        assert field.mul(0x53, 0xCA) == 0x01  # known inverse pair

    def test_mul_identity_and_zero(self):
        field = GF2Field(6)
        for x in range(field.order):
            assert field.mul(x, 1) == x
            assert field.mul(x, 0) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_field_axioms(self, x, y, z):
        field = GF2Field(8)
        assert field.mul(x, y) == field.mul(y, x)
        assert field.mul(field.mul(x, y), z) == field.mul(
            x, field.mul(y, z)
        )
        assert field.mul(x, field.add(y, z)) == field.add(
            field.mul(x, y), field.mul(x, z)
        )

    def test_inverse(self):
        field = GF2Field(5)
        for x in range(1, field.order):
            assert field.mul(x, field.inv(x)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF2Field(4).inv(0)

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            GF2Field(64)

    def test_out_of_field_element(self):
        with pytest.raises(ValueError):
            GF2Field(4).mul(16, 1)

    def test_poly_eval_linear(self):
        field = GF2Field(4)
        # p(x) = 3 + 2x at x=1 -> 3 xor 2 = 1
        assert field.poly_eval([3, 2], 1) == 1


class TestKWise:
    def test_seed_length(self):
        assert KWiseCoins.seed_length(5, 8) == 40

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            KWiseCoins(2, 4, [0, 1])
        with pytest.raises(ValueError):
            KWiseCoins(1, 2, [0, 2])

    def test_deterministic(self):
        seed = [1, 0] * 8
        a = KWiseCoins(4, 4, seed)
        b = KWiseCoins(4, 4, seed)
        assert [a.coin(x) for x in range(16)] == [
            b.coin(x) for x in range(16)
        ]

    def test_coins_are_balanced_on_average(self):
        rng = random.Random(1)
        total = 0
        trials = 300
        for _ in range(trials):
            coins = KWiseCoins(
                4, 8, KWiseCoins.random_seed(4, 8, rng)
            )
            total += sum(coins.coin(x) for x in range(64))
        average = total / (trials * 64)
        assert 0.45 < average < 0.55

    def test_pairwise_independence_empirical(self):
        rng = random.Random(2)
        agree = 0
        trials = 600
        for _ in range(trials):
            coins = KWiseCoins(
                4, 8, KWiseCoins.random_seed(4, 8, rng)
            )
            agree += coins.coin(3) == coins.coin(200)
        # Independent fair coins agree with probability 1/2.
        assert 0.4 < agree / trials < 0.6


class TestFitting:
    def test_perfect_linear_fit(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [2 * x + 1 for x in xs]
        fit = fit_linear(xs, ys, "lin")
        assert abs(fit.slope - 2) < 1e-9
        assert abs(fit.intercept - 1) < 1e-9
        assert fit.r_squared > 0.999

    def test_predict(self):
        fit = fit_linear([0, 1], [1, 3], "f")
        assert abs(fit.predict(2) - 5) < 1e-9

    def test_compare_models_picks_true_form(self):
        data = [(n, 8) for n in (64, 128, 256, 512, 1024)]
        rounds = [
            5 * math.log(n) * math.log(8) + 3 for n, _ in data
        ]
        fits = compare_models(data, rounds, STANDARD_MODELS)
        assert fits[0].name in ("log(n)*log(delta)", "log(n)")

    def test_log_star(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4


class TestTables:
    def test_format_cell(self):
        assert format_cell(3.0) == "3"
        assert format_cell(3.14159) == "3.14"
        assert format_cell("x") == "x"

    def test_table_alignment(self):
        table = ascii_table(
            ["name", "value"], [["a", 1], ["bb", 22]]
        )
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1
        assert "name" in lines[1]
