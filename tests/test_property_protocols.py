"""Hypothesis property tests over random graphs.

These drive whole protocols over randomly generated instances; the
properties are the unconditional invariants (validity, completeness,
palette bounds, Lemma B.3's blocked-phase bound).
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.trial import trial_d2_color
from repro.core.d2color import improved_d2_color
from repro.det.det_d2color import deterministic_d2_color
from repro.det.linial import linial_d2_coloring
from repro.det.locally_iterative import locally_iterative_d2_coloring
from repro.graphs.generators import gnp
from repro.graphs.square import max_d2_degree
from repro.verify.checker import check_d2_coloring

graphs = st.builds(
    lambda n, p, seed: gnp(n, p, seed=seed),
    st.integers(min_value=2, max_value=24),
    st.floats(min_value=0.05, max_value=0.5),
    st.integers(min_value=0, max_value=50),
)

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_SETTINGS
@given(graphs, st.integers(min_value=0, max_value=10))
def test_trial_always_valid(graph, seed):
    result = trial_d2_color(graph, seed=seed)
    assert result.complete
    assert check_d2_coloring(
        graph, result.coloring, result.palette_size
    ).valid


@_SETTINGS
@given(graphs)
def test_deterministic_always_valid(graph):
    result = deterministic_d2_color(graph)
    assert result.complete
    assert check_d2_coloring(
        graph, result.coloring, result.palette_size
    ).valid


@_SETTINGS
@given(graphs, st.integers(min_value=0, max_value=10))
def test_improved_always_valid(graph, seed):
    result = improved_d2_color(graph, seed=seed)
    assert result.complete
    assert check_d2_coloring(
        graph, result.coloring, result.palette_size
    ).valid


@_SETTINGS
@given(graphs)
def test_linial_validity_and_palette(graph):
    delta = max((d for _, d in graph.degree), default=0)
    if delta == 0:
        return
    result = linial_d2_coloring(graph)
    assert check_d2_coloring(
        graph, result.coloring, result.palette_size
    ).valid
    assert result.palette_size <= max(
        graph.number_of_nodes(), 8 * delta**4
    )


@_SETTINGS
@given(graphs)
def test_lemma_b3_blocked_phases(graph):
    delta = max((d for _, d in graph.degree), default=0)
    if delta == 0:
        return
    linial = linial_d2_coloring(graph)
    result = locally_iterative_d2_coloring(
        graph,
        color_in=linial.coloring,
        palette_in=linial.palette_size,
        stop_early=False,
    )
    assert result.complete
    assert (
        result.params["max_blocked_phases"]
        <= 2 * max_d2_degree(graph)
    )
