"""Tests for bit-budget-aware chunking (pipelining)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.congest.pipelining import (
    items_per_message,
    max_item_bits,
    plan_chunks,
    rounds_needed,
)


class TestItemsPerMessage:
    def test_at_least_one(self):
        assert items_per_message(10_000, 64) == 1

    def test_packing_grows_with_budget(self):
        small = items_per_message(10, 100)
        large = items_per_message(10, 1000)
        assert large > small

    def test_rejects_nonpositive_item_bits(self):
        with pytest.raises(ValueError):
            items_per_message(0, 100)

    def test_theorem_b1_regime(self):
        # Small colors (log log n bits) pack many per message --
        # the acceleration behind Theorem B.1.
        per = items_per_message(5, 32 * 10)
        assert per >= 10


class TestPlanChunks:
    def test_roundtrip(self):
        items = list(range(37))
        chunks = plan_chunks(items, 8, 96)
        flattened = [x for chunk in chunks for x in chunk]
        assert flattened == items

    def test_chunk_count_matches_rounds_needed(self):
        items = list(range(50))
        chunks = plan_chunks(items, 12, 128)
        assert len(chunks) == rounds_needed(50, 12, 128)

    def test_empty_items(self):
        assert plan_chunks([], 8, 96) == []
        assert rounds_needed(0, 8, 96) == 0

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=64, max_value=2048),
    )
    def test_roundtrip_property(self, count, item_bits, budget):
        items = list(range(count))
        chunks = plan_chunks(items, item_bits, budget)
        assert [x for c in chunks for x in c] == items
        if count:
            assert len(chunks) == rounds_needed(
                count, item_bits, budget
            )


class TestMaxItemBits:
    def test_empty(self):
        assert max_item_bits([]) == 1

    def test_dominant_item(self):
        assert max_item_bits([1, 2**20]) == 21
